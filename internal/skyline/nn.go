package skyline

import (
	"container/heap"
	"math"

	"manetskyline/internal/rtree"
	"manetskyline/internal/tuple"
)

// NN computes the skyline with the nearest-neighbor algorithm of Kossmann
// et al. (VLDB 2002), the third progressive baseline from the paper's
// related work: repeatedly find the point nearest the origin (by attribute
// sum) inside a candidate region, report it as a skyline member, and split
// the region into one sub-region per dimension — points better than the
// found point on that dimension — maintaining a to-do list of regions until
// all are exhausted. Points discovered through several regions are
// deduplicated.
//
// The classic formulation splits with strict inequalities, which loses
// distinct sites whose attribute vectors exactly tie a reported point; this
// implementation restores them with a final equality pass so the result
// matches the repository-wide skyline semantics.
func NN(ts []tuple.Tuple) []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	dim := ts[0].Dim()
	tree := BuildAttrTree(ts)

	type region struct {
		hi []float64 // exclusive upper bounds per attribute
	}
	inf := make([]float64, dim)
	for i := range inf {
		inf[i] = math.Inf(1)
	}
	todo := []region{{hi: inf}}

	reported := map[int]bool{} // tuple index → already in the skyline
	var sky []tuple.Tuple
	var skyIdx []int

	for len(todo) > 0 {
		r := todo[len(todo)-1]
		todo = todo[:len(todo)-1]
		idx, ok := nnInRegion(tree, r.hi)
		if !ok {
			continue
		}
		if !reported[idx] {
			reported[idx] = true
			sky = append(sky, ts[idx])
			skyIdx = append(skyIdx, idx)
		}
		// Split: one sub-region per dimension, strictly better than the
		// found point on that dimension.
		p := ts[idx].Attrs
		for j := 0; j < dim; j++ {
			if p[j] <= attrFloor(tree, j) {
				continue // empty by construction
			}
			hi := append([]float64(nil), r.hi...)
			if p[j] < hi[j] {
				hi[j] = p[j]
			}
			todo = append(todo, region{hi: hi})
		}
	}

	// Equality pass: distinct sites tying a reported vector are skyline
	// members too.
	for i, t := range ts {
		if reported[i] {
			continue
		}
		for _, k := range skyIdx {
			if vecEqual(t.Attrs, ts[k].Attrs) {
				reported[i] = true
				sky = append(sky, t)
				break
			}
		}
	}
	return sky
}

// attrFloor returns the smallest value of attribute j in the tree.
func attrFloor(t *rtree.Tree, j int) float64 {
	if t.Root() == nil {
		return math.Inf(1)
	}
	return t.Root().Box.Min[j]
}

func vecEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nnInRegion finds the tuple with the minimum attribute sum whose vector is
// strictly below hi on every attribute, via best-first search on the tree.
func nnInRegion(t *rtree.Tree, hi []float64) (int, bool) {
	if t.Root() == nil {
		return 0, false
	}
	pq := &nnHeap{}
	if boxIntersects(t.Root().Box, hi) {
		heap.Push(pq, nnItem{key: t.Root().Box.MinSum(), node: t.Root()})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nnItem)
		if it.node == nil {
			return it.item, true
		}
		if it.node.Leaf() {
			for _, e := range it.node.Entries {
				if pointBelow(e.Point, hi) {
					heap.Push(pq, nnItem{key: sum(e.Point), item: e.Item})
				}
			}
			continue
		}
		for _, c := range it.node.Children {
			if boxIntersects(c.Box, hi) {
				heap.Push(pq, nnItem{key: c.Box.MinSum(), node: c})
			}
		}
	}
	return 0, false
}

// boxIntersects reports whether the box could contain a point strictly
// below hi on every attribute.
func boxIntersects(b rtree.MBR, hi []float64) bool {
	for j := range hi {
		if b.Min[j] >= hi[j] {
			return false
		}
	}
	return true
}

func pointBelow(p, hi []float64) bool {
	for j := range hi {
		if p[j] >= hi[j] {
			return false
		}
	}
	return true
}

type nnItem struct {
	key  float64
	node *rtree.Node
	item int
}

type nnHeap []nnItem

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
