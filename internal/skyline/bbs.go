package skyline

import (
	"container/heap"

	"manetskyline/internal/rtree"
	"manetskyline/internal/tuple"
)

// BBS computes the skyline with the Branch-and-Bound Skyline algorithm of
// Papadias et al. (SIGMOD 2003), the progressive state-of-the-art method
// the paper's related-work section cites: index the attribute vectors in an
// R-tree, expand entries in ascending order of the L1 distance of their
// lower-left corner to the origin, and discard any entry whose corner is
// dominated by an already reported skyline point. Every point is reported
// exactly when popped, so the output is progressive and the algorithm is
// I/O-optimal on the index.
func BBS(ts []tuple.Tuple) []tuple.Tuple {
	return BBSOnTree(ts, nil)
}

// BBSOnTree runs BBS against a prebuilt index over the same tuples' attrs
// (pass nil to build one). Exposed so benchmarks can separate build cost
// from query cost.
func BBSOnTree(ts []tuple.Tuple, tree *rtree.Tree) []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	if tree == nil {
		tree = BuildAttrTree(ts)
	}

	var sky []tuple.Tuple
	// dominatedCorner reports whether a reported skyline point is strictly
	// better than the given lower-left corner on EVERY attribute. Only then
	// is discarding safe here: any point p inside the box satisfies p ≥
	// corner, so an all-strict winner dominates p outright. The textbook
	// ≤-with-one-< test would also discard a box holding a distinct site
	// with attributes identical to a reported point — and such a site is a
	// legitimate skyline member under this system's semantics.
	dominatedCorner := func(p []float64) bool {
		for _, s := range sky {
			if strictlyLessVec(s.Attrs, p) {
				return true
			}
		}
		return false
	}

	pq := &bbsHeap{}
	heap.Push(pq, bbsItem{key: tree.Root().Box.MinSum(), node: tree.Root()})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(bbsItem)
		if it.node != nil {
			if dominatedCorner(it.node.Box.Min) {
				continue
			}
			if it.node.Leaf() {
				for _, e := range it.node.Entries {
					heap.Push(pq, bbsItem{key: sum(e.Point), entry: &ts[e.Item]})
				}
			} else {
				for _, c := range it.node.Children {
					if !dominatedCorner(c.Box.Min) {
						heap.Push(pq, bbsItem{key: c.Box.MinSum(), node: c})
					}
				}
			}
			continue
		}
		// A point: it is skyline unless some reported point strictly
		// dominates it. Points pop in ascending attribute-sum order, so no
		// later point can dominate an earlier one.
		p := *it.entry
		dominated := false
		for _, s := range sky {
			if s.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return sky
}

// BuildAttrTree indexes the tuples' attribute vectors for BBS.
func BuildAttrTree(ts []tuple.Tuple) *rtree.Tree {
	pts := make([][]float64, len(ts))
	for i, t := range ts {
		pts[i] = t.Attrs
	}
	return rtree.Build(pts, 0)
}

// strictlyLessVec reports a < b on every coordinate.
func strictlyLessVec(a, b []float64) bool {
	for i, v := range a {
		if v >= b[i] {
			return false
		}
	}
	return true
}

func sum(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

type bbsItem struct {
	key   float64
	node  *rtree.Node  // non-nil for index entries
	entry *tuple.Tuple // non-nil for points
}

type bbsHeap []bbsItem

func (h bbsHeap) Len() int           { return len(h) }
func (h bbsHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h bbsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bbsHeap) Push(x any)        { *h = append(*h, x.(bbsItem)) }
func (h *bbsHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
