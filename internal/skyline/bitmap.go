package skyline

import (
	"sort"

	"manetskyline/internal/tuple"
)

// Bitmap computes the skyline with the bitmap algorithm of Tan et al.
// (VLDB 2001), another related-work baseline: every attribute is
// rank-encoded against its sorted distinct values, and for each rank two
// bit-slices are maintained — tuples with value ≤ that rank and tuples with
// value < that rank. A tuple t is dominated exactly when some other tuple
// is ≤ t on every attribute AND < t on at least one, i.e. when
//
//	C(t) = (∧_j LEQ_j(t)) ∧ (∨_j LT_j(t))
//
// has a bit set besides t's own possible membership. Bit-parallelism makes
// each test O(n·dim/64) words.
//
// The method shines when attribute domains are small (the paper's devices
// use 100-value domains); memory grows with Σ_j distinct_j × n/64 bits.
func Bitmap(ts []tuple.Tuple) []tuple.Tuple {
	n := len(ts)
	if n == 0 {
		return nil
	}
	dim := ts[0].Dim()
	words := (n + 63) / 64

	// Rank-encode every attribute.
	ranks := make([][]int, dim)    // [attr][tuple] rank
	leq := make([][][]uint64, dim) // [attr][rank] bitmap of tuples with value ≤ rank's value
	for j := 0; j < dim; j++ {
		vals := make([]float64, n)
		for i, t := range ts {
			vals[i] = t.Attrs[j]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		distinct := sorted[:0]
		for i, v := range sorted {
			if i == 0 || v != sorted[i-1] {
				distinct = append(distinct, v)
			}
		}
		domain := append([]float64(nil), distinct...)

		ranks[j] = make([]int, n)
		leq[j] = make([][]uint64, len(domain))
		for r := range leq[j] {
			leq[j][r] = make([]uint64, words)
		}
		for i, v := range vals {
			r := sort.SearchFloat64s(domain, v)
			ranks[j][i] = r
			leq[j][r][i/64] |= 1 << (i % 64)
		}
		// Prefix-or so leq[j][r] covers every rank ≤ r.
		for r := 1; r < len(domain); r++ {
			for w := 0; w < words; w++ {
				leq[j][r][w] |= leq[j][r-1][w]
			}
		}
	}

	and := make([]uint64, words)
	or := make([]uint64, words)
	var sky []tuple.Tuple
	for i := 0; i < n; i++ {
		// AND of ≤-slices and OR of <-slices across attributes.
		for w := range and {
			and[w] = ^uint64(0)
			or[w] = 0
		}
		for j := 0; j < dim; j++ {
			r := ranks[j][i]
			leqSlice := leq[j][r]
			for w := 0; w < words; w++ {
				and[w] &= leqSlice[w]
			}
			if r > 0 {
				ltSlice := leq[j][r-1]
				for w := 0; w < words; w++ {
					or[w] |= ltSlice[w]
				}
			}
		}
		dominated := false
		for w := 0; w < words; w++ {
			if and[w]&or[w] != 0 {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, ts[i])
		}
	}
	return sky
}
