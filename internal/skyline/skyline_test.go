package skyline

import (
	"math/rand"
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/tuple"
)

func tp(x, y float64, attrs ...float64) tuple.Tuple {
	return tuple.Tuple{X: x, Y: y, Attrs: attrs}
}

// hotels returns the paper's Table 2 relation R1.
func hotelsR1() []tuple.Tuple {
	return []tuple.Tuple{
		tp(1, 1, 20, 7),  // h11
		tp(1, 2, 40, 5),  // h12
		tp(1, 3, 80, 7),  // h13
		tp(1, 4, 80, 4),  // h14
		tp(1, 5, 100, 7), // h15
		tp(1, 6, 100, 3), // h16
	}
}

// hotelsR2 returns the paper's Table 3 relation R2.
func hotelsR2() []tuple.Tuple {
	return []tuple.Tuple{
		tp(2, 1, 60, 3),  // h21
		tp(2, 2, 90, 2),  // h22
		tp(2, 3, 120, 1), // h23
		tp(2, 4, 140, 2), // h24
		tp(2, 5, 100, 4), // h25
	}
}

func TestBNLPaperExamples(t *testing.T) {
	// §3.2: skyline of R1 is {h11, h12, h14, h16}; of R2 is {h21, h22, h23}.
	sky1 := BNL(hotelsR1())
	want1 := []tuple.Tuple{tp(1, 1, 20, 7), tp(1, 2, 40, 5), tp(1, 4, 80, 4), tp(1, 6, 100, 3)}
	if !SetEqual(sky1, want1) {
		t.Errorf("skyline(R1) = %v, want %v", sky1, want1)
	}
	sky2 := BNL(hotelsR2())
	want2 := []tuple.Tuple{tp(2, 1, 60, 3), tp(2, 2, 90, 2), tp(2, 3, 120, 1)}
	if !SetEqual(sky2, want2) {
		t.Errorf("skyline(R2) = %v, want %v", sky2, want2)
	}
}

func TestAlgorithmsAgreeOnPaperData(t *testing.T) {
	for _, data := range [][]tuple.Tuple{hotelsR1(), hotelsR2()} {
		bnl := BNL(data)
		for name, sky := range map[string][]tuple.Tuple{
			"SFS":    SFS(data),
			"D&C":    DivideAndConquer(data),
			"Sort2D": Sort2D(data),
		} {
			if !SetEqual(bnl, sky) {
				t.Errorf("%s disagrees with BNL: %v vs %v", name, sky, bnl)
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := BNL(nil); len(got) != 0 {
		t.Errorf("BNL(nil) = %v", got)
	}
	if got := SFS(nil); len(got) != 0 {
		t.Errorf("SFS(nil) = %v", got)
	}
	if got := DivideAndConquer(nil); len(got) != 0 {
		t.Errorf("D&C(nil) = %v", got)
	}
	one := []tuple.Tuple{tp(0, 0, 5, 5)}
	for name, f := range algorithms() {
		if got := f(one); len(got) != 1 || !got[0].Equal(one[0]) {
			t.Errorf("%s singleton = %v", name, got)
		}
	}
}

func algorithms() map[string]func([]tuple.Tuple) []tuple.Tuple {
	return map[string]func([]tuple.Tuple) []tuple.Tuple{
		"BNL": BNL,
		"SFS": SFS,
		"D&C": DivideAndConquer,
	}
}

func TestDuplicateVectorsAllSurvive(t *testing.T) {
	// Two distinct sites with identical attribute vectors: both are skyline
	// members (neither dominates the other).
	data := []tuple.Tuple{
		tp(0, 0, 1, 1),
		tp(9, 9, 1, 1),
		tp(5, 5, 2, 2),
	}
	for name, f := range algorithms() {
		sky := f(data)
		if len(sky) != 2 {
			t.Errorf("%s: got %d tuples, want both duplicate-vector sites: %v", name, len(sky), sky)
		}
	}
	if sky := Sort2D(data); len(sky) != 2 {
		t.Errorf("Sort2D: got %v", sky)
	}
}

func TestAllAlgorithmsAgreeRandom(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated, gen.Correlated} {
		for _, dim := range []int{1, 2, 3, 5} {
			for seed := int64(0); seed < 3; seed++ {
				c := gen.DefaultConfig(400, dim, dist, seed)
				c.Distinct = 20 // coarse grid: many ties, many dominations
				data := gen.Generate(c)
				want := BNL(data)
				if !Verify(data, want) {
					t.Fatalf("%v dim=%d seed=%d: BNL result fails Verify", dist, dim, seed)
				}
				if got := SFS(data); !SetEqual(want, got) {
					t.Errorf("%v dim=%d seed=%d: SFS %d tuples vs BNL %d", dist, dim, seed, len(got), len(want))
				}
				if got := DivideAndConquer(data); !SetEqual(want, got) {
					t.Errorf("%v dim=%d seed=%d: D&C %d tuples vs BNL %d", dist, dim, seed, len(got), len(want))
				}
				if dim == 2 {
					if got := Sort2D(data); !SetEqual(want, got) {
						t.Errorf("%v seed=%d: Sort2D %d tuples vs BNL %d", dist, seed, len(got), len(want))
					}
				}
			}
		}
	}
}

// The skyline must be idempotent: skyline(skyline(S)) = skyline(S).
func TestSkylineIdempotent(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(1000, 3, gen.AntiCorrelated, 4))
	sky := BNL(data)
	if again := BNL(sky); !SetEqual(sky, again) {
		t.Errorf("skyline is not idempotent: %d vs %d", len(sky), len(again))
	}
}

// Union property: skyline(A ∪ B) ⊆ skyline(A) ∪ skyline(B). This is the
// correctness basis of the paper's distributed strategy (§3.1): local
// skylines are a superset of the final skyline's contributions.
func TestSkylineUnionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		c := gen.DefaultConfig(600, 2+r.Intn(3), gen.Distribution(r.Intn(3)), int64(trial))
		data := gen.Generate(c)
		cut := r.Intn(len(data))
		a, b := data[:cut], data[cut:]
		skyA, skyB, skyAll := BNL(a), BNL(b), BNL(data)
		for _, s := range skyAll {
			if !Contains(skyA, s) && !Contains(skyB, s) {
				t.Fatalf("global skyline tuple %v missing from both local skylines", s)
			}
		}
		// And merging local skylines re-derives the global skyline.
		merged := BNL(append(append([]tuple.Tuple{}, skyA...), skyB...))
		if !SetEqual(merged, skyAll) {
			t.Fatalf("merge of local skylines (%d) differs from global skyline (%d)", len(merged), len(skyAll))
		}
	}
}

func TestConstrained(t *testing.T) {
	data := []tuple.Tuple{
		tp(0, 0, 1, 1),   // in range, dominated by nothing in range
		tp(3, 4, 2, 2),   // exactly at distance 5
		tp(100, 0, 0, 0), // best tuple but out of range
	}
	sky := Constrained(data, tuple.Point{X: 0, Y: 0}, 5)
	if len(sky) != 1 || !sky[0].Equal(data[0]) {
		t.Errorf("Constrained = %v, want just %v", sky, data[0])
	}
	if got := Constrained(data, tuple.Point{X: 0, Y: 0}, 0.1); len(got) != 1 {
		t.Errorf("tiny radius should keep only the origin tuple: %v", got)
	}
	if got := Constrained(data, tuple.Point{X: 500, Y: 500}, 1); len(got) != 0 {
		t.Errorf("far-away query should be empty: %v", got)
	}
}

func TestConstrainedMatchesFilterThenSkyline(t *testing.T) {
	data := gen.Generate(gen.DefaultConfig(2000, 2, gen.Independent, 9))
	pos := tuple.Point{X: 500, Y: 500}
	d := 250.0
	got := Constrained(data, pos, d)
	var in []tuple.Tuple
	for _, tpl := range data {
		if pos.WithinDist(tpl.Pos(), d) {
			in = append(in, tpl)
		}
	}
	if !SetEqual(got, BNL(in)) {
		t.Errorf("Constrained disagrees with filter-then-BNL")
	}
	for _, s := range got {
		if !pos.WithinDist(s.Pos(), d) {
			t.Errorf("constrained skyline leaked out-of-range tuple %v", s)
		}
	}
}

func TestSort2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Sort2D should panic on 3-D tuples")
		}
	}()
	Sort2D([]tuple.Tuple{tp(0, 0, 1, 2, 3)})
}

func TestVerifyRejectsWrongSkylines(t *testing.T) {
	data := hotelsR1()
	good := BNL(data)
	if !Verify(data, good) {
		t.Fatalf("Verify rejected a correct skyline")
	}
	if Verify(data, good[:len(good)-1]) {
		t.Errorf("Verify accepted an incomplete skyline")
	}
	withExtra := append(append([]tuple.Tuple{}, good...), tp(1, 3, 80, 7)) // dominated h13
	if Verify(data, withExtra) {
		t.Errorf("Verify accepted a skyline containing a dominated tuple")
	}
	withForeign := append(append([]tuple.Tuple{}, good...), tp(9, 9, 0, 0))
	if Verify(data, withForeign) {
		t.Errorf("Verify accepted a tuple not in the input")
	}
}

func TestSetEqual(t *testing.T) {
	a := []tuple.Tuple{tp(0, 0, 1), tp(1, 1, 2)}
	b := []tuple.Tuple{tp(1, 1, 2), tp(0, 0, 1)}
	if !SetEqual(a, b) {
		t.Errorf("order should not matter")
	}
	if SetEqual(a, b[:1]) {
		t.Errorf("missing element should fail")
	}
	if !SetEqual(nil, nil) {
		t.Errorf("empty sets are equal")
	}
}
