package skyline

import (
	"sort"

	"manetskyline/internal/tuple"
)

// Index computes the skyline with the index method of Tan et al.
// (VLDB 2001): every tuple is assigned to the list of its minimum
// attribute, lists are ordered by that minimum value, and processing visits
// batches in globally increasing minimum value. A batch's survivors are
// found by an intra-batch skyline plus a dominance check against the
// already-accepted skyline; accepted tuples are never evicted, because a
// tuple can only be dominated by one with a strictly smaller — or in ties,
// equal — minimum value, which has then already been processed.
//
// The original uses the structure progressively over B⁺-trees; this
// in-memory form keeps the algorithmic core (minC partitioning, batch
// processing, early dominance) as another related-work baseline.
func Index(ts []tuple.Tuple) []tuple.Tuple {
	if len(ts) == 0 {
		return nil
	}
	type entry struct {
		idx  int
		minC float64
	}
	entries := make([]entry, len(ts))
	for i, t := range ts {
		m := t.Attrs[0]
		for _, v := range t.Attrs[1:] {
			if v < m {
				m = v
			}
		}
		entries[i] = entry{idx: i, minC: m}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].minC < entries[j].minC })

	var sky []tuple.Tuple
	for start := 0; start < len(entries); {
		end := start
		for end < len(entries) && entries[end].minC == entries[start].minC {
			end++
		}
		// Intra-batch skyline first: equal-minC tuples can dominate each
		// other.
		batch := make([]tuple.Tuple, 0, end-start)
		for _, e := range entries[start:end] {
			batch = append(batch, ts[e.idx])
		}
		for _, cand := range BNL(batch) {
			dominated := false
			for _, s := range sky {
				if s.Dominates(cand) {
					dominated = true
					break
				}
			}
			if !dominated {
				sky = append(sky, cand)
			}
		}
		start = end
	}
	return sky
}
