package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync/atomic"
)

// FlightRecorder is a fixed-size lock-free ring of recent events, modeled on
// an aircraft flight recorder: instrumented code records continuously at
// negligible cost, nobody reads it in the steady state, and when something
// goes wrong (a recall drop, a dead-letter, a decode failure) the last N
// events are snapshotted to disk as a post-mortem artifact.
//
// Record is wait-free apart from the event allocation: a single atomic
// fetch-add claims a slot and a single atomic pointer store publishes the
// event, so writers never block each other or a concurrent Snapshot. A
// snapshot taken while writers are active is a best-effort consistent view —
// a slot being overwritten mid-snapshot yields either the old or the new
// event, never a torn one. All methods are safe on a nil receiver, so the
// disabled path is one branch and zero allocations.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	mask  uint64
	seq   atomic.Uint64
}

// FlightEvent is one recorded moment. Fields beyond Seq/T/Kind are
// optional, event-kind-dependent context.
type FlightEvent struct {
	// Seq is the global record order (assigned by Record).
	Seq uint64 `json:"seq"`
	// T is the event time in Unix seconds.
	T float64 `json:"t"`
	// Kind names the event (e.g. "dead_letter", "decode_failure").
	Kind string `json:"kind"`
	// Peer is the device the event happened on.
	Peer int32 `json:"peer"`
	// Org/Cnt tie the event to a query when one is in scope.
	Org int32 `json:"org,omitempty"`
	Cnt int32 `json:"cnt,omitempty"`
	// Detail is free-form context (error text, destination, counts).
	Detail string `json:"detail,omitempty"`
}

// NewFlightRecorder returns a recorder keeping the most recent `size`
// events, rounded up to a power of two (minimum 16).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Safe on a nil receiver (no-op).
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	// Copy into a fresh allocation after the nil check: taking &ev directly
	// would make the parameter escape and the disabled path allocate.
	e := new(FlightEvent)
	*e = ev
	e.Seq = f.seq.Add(1) - 1
	f.slots[e.Seq&f.mask].Store(e)
}

// Len returns the number of events currently held (0 on nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.seq.Load()
	if n > uint64(len(f.slots)) {
		n = uint64(len(f.slots))
	}
	return int(n)
}

// Snapshot returns the retained events in record order. Safe to call while
// writers are active.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL dumps the snapshot one JSON object per line.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the snapshot to path (overwriting), the disk artifact a
// triggered recorder leaves behind. No-op on a nil receiver.
func (f *FlightRecorder) DumpFile(path string) error {
	if f == nil {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
