package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestRegistryDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h")
	b := r.Counter("dup_total", "h")
	if a != b {
		t.Errorf("same name should return the same counter")
	}
	l1 := r.CounterL("dup_total", `mode="A"`, "h")
	l2 := r.CounterL("dup_total", `mode="B"`, "h")
	if l1 == l2 || l1 == a {
		t.Errorf("distinct label sets should be distinct metrics")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering as a different type should panic")
		}
	}()
	r.Gauge("dup_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Errorf("invalid metric name should panic")
		}
	}()
	r.Counter("bad name!", "h")
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("sum = %g, want 106", got)
	}
	if got := h.Mean(); math.Abs(got-21.2) > 1e-9 {
		t.Errorf("mean = %g, want 21.2", got)
	}
	// Cumulative buckets at exposition: le=1 → 2 (0.5 and the boundary
	// value 1), le=2 → 3, le=4 → 4, +Inf → 5.
	snap := r.Snapshot()
	hs := snap.Histograms["h_seconds"]
	want := []int64{2, 3, 4, 5}
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if !hs.Buckets[3].Inf {
		t.Errorf("last bucket should be +Inf")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Errorf("non-increasing bounds should panic")
		}
	}()
	r.Histogram("bad_seconds", "h", []float64{1, 1})
}

// TestNilRegistryIsNoOp pins the disabled state: a nil registry yields nil
// metrics whose every method is safe.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must return nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Errorf("nil metrics must read as zero")
	}
	if got := r.collect(); got != nil {
		t.Errorf("nil registry collect = %v, want nil", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition should be empty, got %q (%v)", sb.String(), err)
	}
}

// TestTelemetryZeroAllocs is the hot-path gate: enabled counters, gauges,
// and histograms must not allocate per operation, and neither must the
// disabled (nil) path. The CI allocation-gate step runs this by name.
func TestTelemetryZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "h")
	g := r.Gauge("alloc_g", "h")
	h := r.Histogram("alloc_h_seconds", "h", LatencyBuckets())
	var nc *Counter
	var ng *Gauge
	var nh *Histogram

	cases := []struct {
		name string
		op   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.042) }},
		{"nil Counter.Inc", func() { nc.Inc() }},
		{"nil Gauge.Set", func() { ng.Set(1) }},
		{"nil Histogram.Observe", func() { nh.Observe(1) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(1000, tc.op); avg != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", tc.name, avg)
		}
	}
}

// TestConcurrentUpdates exercises the atomics under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "h")
	h := r.Histogram("race_seconds", "h", LatencyBuckets())
	g := r.Gauge("race_g", "h")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	// Concurrent exposition must be safe too.
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); math.Abs(got-workers*per*0.01) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, float64(workers*per)*0.01)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "requests served").Add(3)
	r.GaugeL("app_conns", `kind="tcp"`, "open connections").Set(2)
	h := r.Histogram("app_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP app_requests_total requests served",
		"# TYPE app_requests_total counter",
		"app_requests_total 3",
		`app_conns{kind="tcp"} 2`,
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		"app_latency_seconds_sum 0.55",
		"app_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders agree.
	var sb2 strings.Builder
	_ = r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Errorf("exposition is not deterministic")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "h").Inc()
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"j_total": 1`) {
		t.Errorf("JSON snapshot missing counter: %s", sb.String())
	}
}
