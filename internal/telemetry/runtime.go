package telemetry

import "runtime"

// RegisterRuntimeMetrics wires Go runtime health gauges into a registry:
// goroutine count, heap bytes, GC cycle count and total pause time. Values
// are sampled lazily by an OnCollect hook, so an idle registry costs
// nothing and a scrape pays one ReadMemStats. No-op on a nil registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	goroutines := r.Gauge("go_goroutines", "current number of goroutines")
	heap := r.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects")
	sys := r.Gauge("go_sys_bytes", "bytes obtained from the OS")
	gcCycles := r.Gauge("go_gc_cycles_total", "completed GC cycles")
	gcPause := r.Gauge("go_gc_pause_ns_total", "cumulative GC stop-the-world pause, nanoseconds")
	r.OnCollect(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heap.Set(int64(ms.HeapAlloc))
		sys.Set(int64(ms.Sys))
		gcCycles.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
	})
}
