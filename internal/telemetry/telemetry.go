// Package telemetry is the shared measurement vocabulary of the
// reproduction: a registry of counters, gauges, and fixed-bucket histograms
// that every layer — the radio medium, AODV routing, the core protocol, the
// MANET simulator, and the live TCP peers — reports into, plus per-query
// spans that turn the flat event trace into issue→process→…→complete
// timelines.
//
// Two properties shape the design:
//
//   - Hot-path instrumentation is allocation-free. Counters and histogram
//     observations are single atomic operations on pre-registered metric
//     objects; nothing on the increment path touches the registry, takes a
//     lock, or allocates (pinned by TestTelemetryZeroAllocs, the same kind
//     of gate as sim's TestScheduleStepZeroAllocs).
//   - Disabled telemetry is a nil check. Every metric method is safe on a
//     nil receiver and registering against a nil *Registry yields nil
//     metrics, so instrumented code increments unconditionally and a
//     scenario without telemetry pays one predictable branch per site.
//
// All metric values are updated with sync/atomic, so one registry may be
// shared between the single-threaded simulator, concurrent TCP peers, and
// an HTTP exposition goroutine (see http.go) without further locking.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
	help   string
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for Prometheus semantics; this is not
// enforced on the hot path). Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v      atomic.Int64
	name   string
	labels string
	help   string
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Inc adds one. Safe on a nil receiver (no-op).
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one. Safe on a nil receiver (no-op).
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// bounds of each bucket, counts[len(bounds)] is the implicit +Inf bucket.
// Buckets are stored non-cumulatively and accumulated at exposition time.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
	name   string
	labels string
	help   string
}

// Observe records one sample. The bucket scan is linear — exposition-grade
// histograms have ~10 buckets, where a predictable scan beats binary
// search — and the sum update is a CAS loop on the float bits. Safe on a
// nil receiver (no-op); allocation-free on the enabled path.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) from the fixed buckets by
// linear interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Samples in the +Inf
// bucket clamp to the largest finite bound (there is nothing better to
// report without retained samples). Returns 0 on a nil or empty histogram.
// The estimate's resolution is the bucket width; summary lines that no
// longer retain raw samples trade exactness for O(1) memory here.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled state: its constructors
// return nil metrics whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]any
	order []string
	hooks []func()
}

// OnCollect registers a hook that runs before every exposition pass
// (WritePrometheus, Snapshot, Bytes). Lazily sampled metrics — runtime
// gauges, queue depths held elsewhere — use it to refresh their gauges only
// when someone is actually looking. No-op on a nil registry.
func (r *Registry) OnCollect(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// key builds the dedupe key for a metric identity.
func key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// validName rejects names that would corrupt the text exposition.
func validName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for _, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
		}
	}
}

// register installs a metric under its key, or returns the existing one.
func register[T any](r *Registry, name, labels string, mk func() *T) *T {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if m, ok := r.byKey[k]; ok {
		t, ok := m.(*T)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as a different type", k))
		}
		return t
	}
	t := mk()
	r.byKey[k] = t
	r.order = append(r.order, k)
	return t
}

// Counter registers (or fetches) a counter. Nil registry ⇒ nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL is Counter with a constant label block, e.g. `mode="UNE"`.
func (r *Registry) CounterL(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	return register(r, name, labels, func() *Counter {
		return &Counter{name: name, labels: labels, help: help}
	})
}

// Gauge registers (or fetches) a gauge. Nil registry ⇒ nil gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, "", help)
}

// GaugeL is Gauge with a constant label block.
func (r *Registry) GaugeL(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	return register(r, name, labels, func() *Gauge {
		return &Gauge{name: name, labels: labels, help: help}
	})
}

// Histogram registers (or fetches) a histogram with the given strictly
// increasing bucket upper bounds (a +Inf bucket is implicit). Nil registry
// ⇒ nil histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, "", help, bounds)
}

// HistogramL is Histogram with a constant label block.
func (r *Registry) HistogramL(name, labels, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not strictly increasing", name))
		}
	}
	return register(r, name, labels, func() *Histogram {
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
			name:   name, labels: labels, help: help,
		}
	})
}

// LatencyBuckets are exponential-ish second buckets suitable for local-net
// query latencies (1 ms … 2.5 s).
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
}

// SizeBuckets are power-of-two count buckets (1 … 1024) suitable for
// skyline and result sizes.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}
