package telemetry

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{10, 20, 30, 40})
	// 100 uniform samples in (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 20}, {0.25, 10}, {0.75, 30}, {0.95, 38}, {1, 40},
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 0.5 {
			t.Errorf("Quantile(%g) = %g, want ~%g", tc.p, got, tc.want)
		}
	}
	// Out-of-range p clamps instead of extrapolating.
	if got := h.Quantile(-1); got < 0 || got > 0.5 {
		t.Errorf("Quantile(-1) = %g, want ~0", got)
	}
	if got := h.Quantile(2); math.Abs(got-40) > 0.5 {
		t.Errorf("Quantile(2) = %g, want 40", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nh *Histogram
	if got := nh.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}
	r := NewRegistry()
	empty := r.Histogram("qe_seconds", "h", []float64{1})
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	// Samples beyond the last bound clamp to it: the estimate degrades
	// honestly rather than inventing a value.
	over := r.Histogram("qo_seconds", "h", []float64{1, 2})
	for i := 0; i < 10; i++ {
		over.Observe(100)
	}
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow Quantile = %g, want clamp to 2", got)
	}
}

func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(4) // rounds up to 16
	for i := 0; i < 5; i++ {
		f.Record(FlightEvent{T: float64(i), Kind: "k", Peer: int32(i)})
	}
	evs := f.Snapshot()
	if len(evs) != 5 || f.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(evs), f.Len())
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Peer != int32(i) {
			t.Errorf("event %d = %+v, want seq/peer %d", i, e, i)
		}
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		f.Record(FlightEvent{Peer: int32(i)})
	}
	evs := f.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("after wrap len = %d, want 16", len(evs))
	}
	// The ring keeps the most recent 16, in order.
	for i, e := range evs {
		if want := int32(24 + i); e.Peer != want {
			t.Errorf("event %d peer = %d, want %d", i, e.Peer, want)
		}
	}
}

func TestFlightRecorderNilAndZeroAlloc(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: "x"})
	if f.Snapshot() != nil || f.Len() != 0 {
		t.Error("nil recorder must be empty")
	}
	if err := f.DumpFile(filepath.Join(t.TempDir(), "never.jsonl")); err != nil {
		t.Errorf("nil DumpFile: %v", err)
	}
	ev := FlightEvent{Kind: "dead_letter", Peer: 3}
	if avg := testing.AllocsPerRun(1000, func() { f.Record(ev) }); avg != 0 {
		t.Errorf("nil Record allocates %.1f times per op, want 0", avg)
	}
	var l *SpanLog
	st := Stage{T: 1, Kind: StageDecode, Device: 1}
	if avg := testing.AllocsPerRun(1000, func() { l.ObserveAuto(SpanKey{}, st) }); avg != 0 {
		t.Errorf("nil ObserveAuto allocates %.1f times per op, want 0", avg)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightEvent{Peer: int32(w)})
				if i%100 == 0 {
					_ = f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	evs := f.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("len = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered at %d", i)
		}
	}
}

func TestFlightRecorderDumpFile(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(FlightEvent{T: 1.5, Kind: "decode_failure", Peer: 2, Org: 1, Cnt: 3, Detail: "boom"})
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := f.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ev FlightEvent
	if err := json.Unmarshal(raw, &ev); err != nil {
		t.Fatalf("dump line not JSON: %v\n%s", err, raw)
	}
	if ev.Kind != "decode_failure" || ev.Detail != "boom" || ev.Org != 1 {
		t.Errorf("dumped event = %+v", ev)
	}
}

func TestSpanLogObserveAuto(t *testing.T) {
	l := NewSpanLog()
	k := SpanKey{Org: 7, Cnt: 1}
	// A remote peer sees decode/handle for a query it never issued.
	l.Observe(k, Stage{T: 1, Kind: StageDecode, Device: 3}) // dropped: unknown key
	l.ObserveAuto(k, Stage{T: 2, Kind: StageDecode, Device: 3, Peer: 7, Hops: 1, Bytes: 40})
	l.ObserveAuto(k, Stage{T: 3, Kind: StageHandle, Device: 3})
	spans := l.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Start != 2 || len(sp.Stages) != 2 {
		t.Errorf("auto span start=%g stages=%d, want 2/2", sp.Start, len(sp.Stages))
	}
	if sp.Stages[0].Peer != 7 || sp.Stages[0].Bytes != 40 {
		t.Errorf("stage lost transport fields: %+v", sp.Stages[0])
	}
	// ObserveAuto on an already-open span appends normally.
	l.Begin(SpanKey{Org: 1, Cnt: 1}, 0)
	l.ObserveAuto(SpanKey{Org: 1, Cnt: 1}, Stage{T: 1, Kind: StageWrite, Device: 1})
	if got := len(l.Spans()[1].Stages); got != 2 {
		t.Errorf("stages on pre-opened span = %d, want 2", got)
	}
}

func TestSpanLogWriteJSONL(t *testing.T) {
	l := NewSpanLog()
	l.Begin(SpanKey{Org: 1, Cnt: 0}, 0)
	l.Complete(SpanKey{Org: 1, Cnt: 0}, 1, 4)
	l.Begin(SpanKey{Org: 2, Cnt: 0}, 0.5)
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d not a span: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("JSONL lines = %d, want 2", n)
	}
	// Transport fields stay omitted for sim-style stages, keeping existing
	// golden span dumps byte-identical.
	if strings.Contains(sb.String(), `"peer"`) || strings.Contains(sb.String(), `"bytes"`) {
		t.Errorf("zero transport fields leaked into JSON: %s", sb.String())
	}
}

func TestRegistryBytesReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("radio_bytes_sent_total", "h").Add(1000)
	r.Counter("aodv_bytes_sent_total", "h").Add(200)
	r.Counter("tcp_bytes_out_total", "h").Add(300)
	r.Counter("tcp_bytes_in_total", "h").Add(290)
	r.Counter("tcp_messages_out_total", "h").Add(5) // not a byte counter
	rep := r.Bytes()
	if rep.OnAir != 1500 {
		t.Errorf("OnAir = %d, want 1500", rep.OnAir)
	}
	if got := rep.Layers["tcp"]; got.Sent != 300 || got.Received != 290 {
		t.Errorf("tcp layer = %+v", got)
	}
	if got := rep.Layers["radio"]; got.Sent != 1000 {
		t.Errorf("radio layer = %+v", got)
	}
	s := rep.String()
	if !strings.Contains(s, "bytes on air: 1500") || !strings.Contains(s, "aodv 200") {
		t.Errorf("report line = %q", s)
	}
	var nilReg *Registry
	if got := nilReg.Bytes(); got.OnAir != 0 || len(got.Layers) != 0 {
		t.Errorf("nil registry bytes = %+v", got)
	}
}

func TestRuntimeMetricsAndOnCollect(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	hookRan := 0
	r.OnCollect(func() { hookRan++ })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if hookRan != 1 {
		t.Errorf("OnCollect hook ran %d times, want 1", hookRan)
	}
	out := sb.String()
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_ns_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %s", want)
		}
	}
	if g := r.Gauge("go_goroutines", ""); g.Value() < 1 {
		t.Errorf("go_goroutines = %d, want ≥ 1", g.Value())
	}
	RegisterRuntimeMetrics(nil) // must not panic
}

// TestConcurrentObserveVsExposition hammers spans, histograms, and the
// flight recorder from writers while exposition (Prometheus text, JSON,
// trace JSONL, flight JSONL) runs concurrently — the race-detector gate for
// the scrape-while-hot contract.
func TestConcurrentObserveVsExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cx_seconds", "h", LatencyBuckets())
	c := r.Counter("cx_bytes_sent_total", "h")
	l := NewSpanLog()
	f := NewFlightRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := SpanKey{Org: int32(w), Cnt: int32(i % 8)}
				l.ObserveAuto(k, Stage{T: float64(i), Kind: StageDecode, Device: int32(w), Peer: 1, Bytes: 10})
				h.Observe(0.001 * float64(i%100))
				c.Add(10)
				f.Record(FlightEvent{Kind: "reconnect", Peer: int32(w)})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
		if err := r.WriteJSON(&sb); err != nil {
			t.Error(err)
		}
		if err := l.WriteJSONL(&sb); err != nil {
			t.Error(err)
		}
		if err := f.WriteJSONL(&sb); err != nil {
			t.Error(err)
		}
		_ = r.Bytes()
		_ = h.Quantile(0.95)
	}
	close(stop)
	wg.Wait()
}

func TestObsMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_total", "h").Inc()
	l := NewSpanLog()
	l.Begin(SpanKey{Org: 1}, 0)
	f := NewFlightRecorder(16)
	f.Record(FlightEvent{Kind: "dial_failure"})
	srv := httptest.NewServer(NewObsMux(r, l, f))
	defer srv.Close()
	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "mux_total 1") {
		t.Errorf("/metrics: %s", out)
	}
	if out := get("/trace.jsonl"); !strings.Contains(out, `"org":1`) {
		t.Errorf("/trace.jsonl: %s", out)
	}
	if out := get("/flight.jsonl"); !strings.Contains(out, "dial_failure") {
		t.Errorf("/flight.jsonl: %s", out)
	}
	// Legacy NewMux still serves empty trace/flight bodies rather than 404.
	srv2 := httptest.NewServer(NewMux(r))
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/trace.jsonl")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("legacy mux /trace.jsonl: %v %v", err, resp)
	}
	resp.Body.Close()
}
