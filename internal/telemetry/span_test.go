package telemetry

import (
	"strings"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	l := NewSpanLog()
	k := SpanKey{Org: 0, Cnt: 0} // zero key must work (device 0, wrapped counter)
	l.Begin(k, 1.0)
	l.Observe(k, Stage{T: 1.5, Kind: StageProcess, Device: 3, Tuples: 12, Hops: 2, Pruned: 5})
	l.Observe(k, Stage{T: 1.6, Kind: StageFilterUpdate, Device: 3})
	l.Observe(k, Stage{T: 2.0, Kind: StageResult, Device: 0, Tuples: 12, Hops: 3})
	l.Observe(k, Stage{T: 2.2, Kind: StageProcess, Device: 5, Tuples: 8, Pruned: 2})
	l.Complete(k, 3.0, 20)

	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
	sp := l.Spans()[0]
	if !sp.Done || sp.Start != 1.0 || sp.End != 3.0 {
		t.Errorf("span bounds wrong: %+v", sp)
	}
	if sp.Duration() != 2.0 {
		t.Errorf("duration = %g, want 2", sp.Duration())
	}
	if sp.Devices != 2 || sp.Results != 1 || sp.FilterUpdates != 1 {
		t.Errorf("tallies wrong: %+v", sp)
	}
	if sp.MaxHops != 3 || sp.Pruned != 7 || sp.ResultTuples != 20 {
		t.Errorf("aggregates wrong: %+v", sp)
	}
	// Timeline: issue first, complete last, 6 stages total.
	if n := len(sp.Stages); n != 6 {
		t.Fatalf("stages = %d, want 6", n)
	}
	if sp.Stages[0].Kind != StageIssue || sp.Stages[5].Kind != StageComplete {
		t.Errorf("timeline ends wrong: %v … %v", sp.Stages[0].Kind, sp.Stages[5].Kind)
	}
}

func TestSpanLogEdgeCases(t *testing.T) {
	l := NewSpanLog()
	k := SpanKey{Org: 1, Cnt: 2}
	// Stages before Begin are dropped, not panics.
	l.Observe(k, Stage{Kind: StageProcess})
	l.Complete(k, 1, 0)
	if l.Len() != 0 {
		t.Errorf("orphan stages must not create spans")
	}
	l.Begin(k, 0)
	l.Begin(k, 5) // duplicate Begin ignored
	l.Complete(k, 2, 1)
	l.Complete(k, 9, 99) // duplicate Complete ignored
	sp := l.Spans()[0]
	if sp.Start != 0 || sp.End != 2 || sp.ResultTuples != 1 {
		t.Errorf("duplicate begin/complete must be ignored: %+v", sp)
	}
}

func TestNilSpanLogIsNoOp(t *testing.T) {
	var l *SpanLog
	k := SpanKey{}
	l.Begin(k, 0)
	l.Observe(k, Stage{Kind: StageProcess})
	l.Complete(k, 1, 0)
	if l.Len() != 0 || l.Spans() != nil {
		t.Errorf("nil span log must no-op")
	}
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("nil span log JSON = %q, want []", sb.String())
	}
}

func TestSpanWriteJSON(t *testing.T) {
	l := NewSpanLog()
	l.Begin(SpanKey{Org: 4, Cnt: 1}, 0.5)
	l.Complete(SpanKey{Org: 4, Cnt: 1}, 1.5, 3)
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"org": 4`, `"kind": "issue"`, `"kind": "complete"`, `"result_tuples": 3`} {
		if !strings.Contains(out, want) {
			t.Errorf("span JSON missing %q:\n%s", want, out)
		}
	}
}
