package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Spans turn the flat per-event trace into per-query timelines: one Span
// per query, accumulating its issue→process→filter-update→result→complete
// stages together with hop counts and filter-prune tallies. The simulator
// feeds a SpanLog alongside its JSONL trace (internal/manet); the TCP peer
// runtime can feed the same structure for live queries. Spans are an
// enabled-only feature and may allocate (stage slices grow); the zero-alloc
// guarantee of this package covers counters, gauges, and histograms.

// Stage kinds, in canonical lifecycle order.
const (
	StageIssue        = "issue"
	StageProcess      = "process"
	StageFilterUpdate = "filter-update"
	StageResult       = "result"
	StageRetry        = "retry"
	StageComplete     = "complete"
)

// SF (sampling-filter) stage kinds: the originator's sample arrivals and
// its filter-set broadcast, between issue and the survivor results.
const (
	StageSample    = "sample"
	StageFilterSet = "filter-set"
)

// Transport stage kinds recorded by the live TCP tier: one frame's journey
// is enqueue → (dial) → write on the sender and decode → handle → (reply)
// on the receiver. Merging the write/decode pairs across peers (see
// internal/trace) recovers the causal per-hop timeline.
const (
	StageEnqueue = "enqueue"
	StageDial    = "dial"
	StageWrite   = "write"
	StageDecode  = "decode"
	StageHandle  = "handle"
	StageReply   = "reply"
)

// SpanKey identifies one query instance (the paper's (id, cnt) pair).
type SpanKey struct {
	Org int32 `json:"org"`
	Cnt int32 `json:"cnt"`
}

// Stage is one step of a query's timeline.
type Stage struct {
	// T is the stage's timestamp: simulated seconds in the simulator,
	// wall-clock seconds since query start in the live runtime.
	T float64 `json:"t"`
	// Kind is one of the Stage* constants.
	Kind string `json:"kind"`
	// Device is the device the stage happened on.
	Device int32 `json:"device"`
	// Tuples counts tuples involved (local skyline size, result size).
	Tuples int `json:"tuples,omitempty"`
	// Hops is the network distance the triggering message travelled
	// (flood depth for process stages, route length for result stages,
	// TCP hop number for transport stages).
	Hops int `json:"hops,omitempty"`
	// Pruned counts tuples the query's filter(s) removed at this device.
	Pruned int `json:"pruned,omitempty"`
	// Peer, for transport stages, is the other end of the hop: the
	// destination for enqueue/dial/write/reply, the sender for
	// decode/handle. Zero-valued stages omit it, so simulator spans (and
	// their goldens) are unchanged.
	Peer int32 `json:"peer,omitempty"`
	// Bytes is the on-wire size of the frame a transport stage moved.
	Bytes int `json:"bytes,omitempty"`
}

// Span is one query's assembled timeline with aggregate tallies.
type Span struct {
	Org int32 `json:"org"`
	Cnt int32 `json:"cnt"`
	// Start and End are the issue and completion timestamps; End is
	// meaningful only when Done.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Done  bool    `json:"done"`
	// Stages is the ordered timeline.
	Stages []Stage `json:"stages"`
	// Devices counts process stages (each device processes a query at most
	// once, so this is the number of devices the query reached).
	Devices int `json:"devices"`
	// Results counts result stages observed at the originator.
	Results int `json:"results"`
	// MaxHops is the largest hop count any stage reported.
	MaxHops int `json:"max_hops"`
	// Pruned is the total filter-prune tally across devices.
	Pruned int `json:"pruned"`
	// FilterUpdates counts dynamic filter replacements along the way.
	FilterUpdates int `json:"filter_updates"`
	// ResultTuples is the final merged skyline size (when Done).
	ResultTuples int `json:"result_tuples"`
	// Retries counts originator re-issues under the retry/backoff policy.
	Retries int `json:"retries,omitempty"`
	// Partial marks a query finalized by its deadline before the normal
	// completion condition was met.
	Partial bool `json:"partial,omitempty"`
	// Recall, when set, is the post-run recall of the query's result
	// against the centralized constrained-skyline oracle.
	Recall *float64 `json:"recall,omitempty"`
}

// Duration is End-Start for completed spans, 0 otherwise.
func (s *Span) Duration() float64 {
	if !s.Done {
		return 0
	}
	return s.End - s.Start
}

// SpanLog collects spans for many queries. All methods are safe on a nil
// receiver (no-op), so callers instrument unconditionally, and are
// goroutine-safe for the live runtime.
type SpanLog struct {
	mu    sync.Mutex
	spans map[SpanKey]*Span
	order []SpanKey
}

// NewSpanLog returns an empty span log.
func NewSpanLog() *SpanLog {
	return &SpanLog{spans: make(map[SpanKey]*Span)}
}

// Begin opens a span at time t on the originating device and records its
// issue stage.
func (l *SpanLog) Begin(k SpanKey, t float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.spans[k]; ok {
		return
	}
	sp := &Span{Org: k.Org, Cnt: k.Cnt, Start: t}
	sp.Stages = append(sp.Stages, Stage{T: t, Kind: StageIssue, Device: k.Org})
	l.spans[k] = sp
	l.order = append(l.order, k)
}

// Observe appends a stage to an open span and folds it into the span's
// aggregate tallies. Stages for unknown keys are dropped.
func (l *SpanLog) Observe(k SpanKey, st Stage) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sp := l.spans[k]
	if sp == nil {
		return
	}
	sp.Stages = append(sp.Stages, st)
	switch st.Kind {
	case StageProcess:
		sp.Devices++
		sp.Pruned += st.Pruned
	case StageResult:
		sp.Results++
	case StageFilterUpdate:
		sp.FilterUpdates++
	case StageRetry:
		sp.Retries++
	}
	if st.Hops > sp.MaxHops {
		sp.MaxHops = st.Hops
	}
}

// ObserveAuto is Observe for peers that did not originate the query: if the
// span is unknown it is opened first (without an issue stage — only the
// originator issues), starting at the stage's timestamp. Remote peers in the
// live runtime use it so a forwarded query's decode/handle stages land in a
// span keyed by the same (org, cnt) the originator used, and a later merge
// (internal/trace) can stitch the per-peer logs into one timeline.
func (l *SpanLog) ObserveAuto(k SpanKey, st Stage) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.spans[k] == nil {
		l.spans[k] = &Span{Org: k.Org, Cnt: k.Cnt, Start: st.T}
		l.order = append(l.order, k)
	}
	l.mu.Unlock()
	l.Observe(k, st)
}

// MarkPartial flags an open span as deadline-finalized; call before
// Complete.
func (l *SpanLog) MarkPartial(k SpanKey) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if sp := l.spans[k]; sp != nil {
		sp.Partial = true
	}
}

// Complete closes a span at time t with the final merged result size.
func (l *SpanLog) Complete(k SpanKey, t float64, resultTuples int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sp := l.spans[k]
	if sp == nil || sp.Done {
		return
	}
	sp.Done = true
	sp.End = t
	sp.ResultTuples = resultTuples
	sp.Stages = append(sp.Stages, Stage{
		T: t, Kind: StageComplete, Device: k.Org, Tuples: resultTuples,
	})
}

// Spans returns every span in Begin order. The returned spans are the live
// objects; callers must not mutate them while the log is still being fed.
func (l *SpanLog) Spans() []*Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Span, 0, len(l.order))
	for _, k := range l.order {
		out = append(out, l.spans[k])
	}
	return out
}

// Len returns the number of open or completed spans.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// WriteJSON dumps every span as an indented JSON array.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	spans := l.Spans()
	if spans == nil {
		spans = []*Span{}
	}
	return enc.Encode(spans)
}

// WriteJSONL dumps every span as one JSON object per line — the /trace.jsonl
// wire format cmd/skytrace consumes.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range l.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
