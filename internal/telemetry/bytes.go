package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// The bytes-on-air ledger: the paper's central cost model is messages and
// bytes over multi-hop routes, so every layer that moves bytes keeps a
// `<layer>_bytes_…_total` counter (radio_bytes_sent_total,
// aodv_bytes_sent_total, manet_query_bytes_total, tcp_bytes_out_total, …).
// Registry.Bytes rolls whatever byte counters exist into one BytesReport so
// strategies can be scored on bytes, not just latency, without each caller
// knowing the full counter inventory.

// LayerBytes is one layer's sent/received byte totals.
type LayerBytes struct {
	// Sent counts bytes the layer put on the air/wire.
	Sent int64 `json:"sent"`
	// Received counts bytes the layer took off the wire (zero for layers
	// that only account transmissions).
	Received int64 `json:"received,omitempty"`
}

// BytesReport is the per-layer roll-up of every byte counter in a registry.
type BytesReport struct {
	// Layers maps layer name (the counter prefix: "radio", "tcp", …) to
	// its totals.
	Layers map[string]LayerBytes `json:"layers"`
	// OnAir is the total bytes sent across all layers — the paper's cost
	// metric. Received bytes are excluded so a hop is not double-counted.
	OnAir int64 `json:"on_air"`
}

// Bytes builds the ledger from every counter whose name contains "_bytes"
// or ends in "_bytes_total"-style suffixes. Direction is inferred from the
// name: "…_in…"/"…_received…"/"…_recv…" counts as received, everything else
// as sent. Safe on a nil registry (empty report).
func (r *Registry) Bytes() BytesReport {
	rep := BytesReport{Layers: map[string]LayerBytes{}}
	for _, m := range r.collect() {
		if m.kind != "counter" || !strings.Contains(m.name, "_bytes") {
			continue
		}
		layer := m.name
		if i := strings.IndexByte(m.name, '_'); i > 0 {
			layer = m.name[:i]
		}
		lb := rep.Layers[layer]
		if strings.Contains(m.name, "_in_") || strings.HasSuffix(m.name, "_in") ||
			strings.Contains(m.name, "_received") || strings.Contains(m.name, "_recv") {
			lb.Received += m.value
		} else {
			lb.Sent += m.value
			rep.OnAir += m.value
		}
		rep.Layers[layer] = lb
	}
	return rep
}

// String renders the report as one deterministic human-readable line, e.g.
//
//	bytes on air: 12345 (radio 10000, tcp 2345)
func (b BytesReport) String() string {
	names := make([]string, 0, len(b.Layers))
	for name := range b.Layers {
		if b.Layers[name].Sent > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "bytes on air: %d", b.OnAir)
	if len(names) > 0 {
		sb.WriteString(" (")
		for i, name := range names {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %d", name, b.Layers[name].Sent)
		}
		sb.WriteString(")")
	}
	return sb.String()
}
