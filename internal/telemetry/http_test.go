package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "ups").Add(7)
	code, body, hdr := get(t, NewMux(r), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "up_total 7") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Gauge("live", "liveness").Set(1)
	code, body, hdr := get(t, NewMux(r), "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, `"live": 1`) {
		t.Errorf("json body missing gauge:\n%s", body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestPprofEndpoint(t *testing.T) {
	code, body, _ := get(t, NewMux(nil), "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index should list profiles:\n%.200s", body)
	}
}

func TestNilRegistryEndpointsServe(t *testing.T) {
	code, body, _ := get(t, NewMux(nil), "/metrics")
	if code != http.StatusOK || body != "" {
		t.Errorf("nil registry /metrics = %d %q, want 200 with empty body", code, body)
	}
}
