package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// HTTP exposition: Handler and JSONHandler serve one registry; NewMux
// bundles them with net/http/pprof under the conventional paths, giving a
// live peer (cmd/skypeer) its /metrics + /debug/pprof endpoint in one call:
//
//	go http.ListenAndServe(addr, telemetry.NewMux(reg))

// Handler serves the registry in the Prometheus text exposition format.
// A nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as a JSON snapshot.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// NewMux returns a mux serving /metrics (Prometheus text), /metrics.json
// (JSON snapshot), and the standard /debug/pprof profiling endpoints.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
