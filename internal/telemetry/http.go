package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// HTTP exposition: Handler and JSONHandler serve one registry; NewMux
// bundles them with net/http/pprof under the conventional paths, giving a
// live peer (cmd/skypeer) its /metrics + /debug/pprof endpoint in one call:
//
//	go http.ListenAndServe(addr, telemetry.NewMux(reg))

// Handler serves the registry in the Prometheus text exposition format.
// A nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as a JSON snapshot.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// TraceHandler serves a span log as JSONL, the format cmd/skytrace pulls
// from each peer's /trace.jsonl and merges. A nil log serves an empty body.
func TraceHandler(l *SpanLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = l.WriteJSONL(w)
	})
}

// FlightHandler serves a flight recorder's current ring as JSONL. A nil
// recorder serves an empty body.
func FlightHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = f.WriteJSONL(w)
	})
}

// NewMux returns a mux serving /metrics (Prometheus text), /metrics.json
// (JSON snapshot), and the standard /debug/pprof profiling endpoints.
func NewMux(r *Registry) *http.ServeMux {
	return NewObsMux(r, nil, nil)
}

// NewObsMux is NewMux plus the tracing endpoints: /trace.jsonl serves the
// span log and /flight.jsonl the flight recorder (both serve empty bodies
// when nil, so callers wire what they have).
func NewObsMux(r *Registry, spans *SpanLog, flight *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.Handle("/trace.jsonl", TraceHandler(spans))
	mux.Handle("/flight.jsonl", FlightHandler(flight))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
