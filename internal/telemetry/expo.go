package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// This file renders a registry for consumption: the Prometheus text
// exposition format (for /metrics and scrape-style tooling) and a JSON
// snapshot (for the bench harness and ad hoc inspection). Exposition walks
// metrics in sorted order so output is deterministic; it reads values with
// the same atomics the hot paths write, so it can run concurrently with an
// active simulation or peer.

// snapshotMetric is one metric's point-in-time state, shared by both
// exposition formats.
type snapshotMetric struct {
	name   string
	labels string
	help   string
	kind   string // "counter", "gauge", "histogram"

	value int64 // counter/gauge

	bounds  []float64 // histogram
	buckets []int64   // cumulative
	sum     float64
	count   int64
}

// collect reads every metric. Safe on a nil registry (empty result).
func (r *Registry) collect() []snapshotMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	byKey := make(map[string]any, len(keys))
	for _, k := range keys {
		byKey[k] = r.byKey[k]
	}
	r.mu.Unlock()
	sort.Strings(keys)

	out := make([]snapshotMetric, 0, len(keys))
	for _, k := range keys {
		switch m := byKey[k].(type) {
		case *Counter:
			out = append(out, snapshotMetric{
				name: m.name, labels: m.labels, help: m.help,
				kind: "counter", value: m.Value(),
			})
		case *Gauge:
			out = append(out, snapshotMetric{
				name: m.name, labels: m.labels, help: m.help,
				kind: "gauge", value: m.Value(),
			})
		case *Histogram:
			s := snapshotMetric{
				name: m.name, labels: m.labels, help: m.help,
				kind: "histogram", bounds: m.bounds,
				sum: m.Sum(), count: m.Count(),
			}
			cum := int64(0)
			s.buckets = make([]int64, len(m.counts))
			for i := range m.counts {
				cum += m.counts[i].Load()
				s.buckets[i] = cum
			}
			out = append(out, s)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Metrics are sorted by name; HELP/TYPE headers are emitted once
// per metric family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.collect() {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.name, m.help, m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		var err error
		switch m.kind {
		case "counter", "gauge":
			err = writeSample(w, m.name, m.labels, float64(m.value), true)
		case "histogram":
			for i, b := range m.buckets {
				le := "+Inf"
				if i < len(m.bounds) {
					le = formatFloat(m.bounds[i])
				}
				lbl := `le="` + le + `"`
				if m.labels != "" {
					lbl = m.labels + "," + lbl
				}
				if err = writeSample(w, m.name+"_bucket", lbl, float64(b), true); err != nil {
					return err
				}
			}
			if err = writeSample(w, m.name+"_sum", m.labels, m.sum, false); err != nil {
				return err
			}
			err = writeSample(w, m.name+"_count", m.labels, float64(m.count), true)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSample emits one exposition line.
func writeSample(w io.Writer, name, labels string, v float64, integral bool) error {
	val := formatFloat(v)
	if integral {
		val = strconv.FormatInt(int64(v), 10)
	}
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, val)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, val)
	return err
}

// formatFloat renders a float compactly and losslessly.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SnapshotBucket is one cumulative histogram bucket in a snapshot. The
// +Inf bucket sets Inf instead of LE because JSON cannot encode infinity.
type SnapshotBucket struct {
	LE    float64 `json:"le"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// SnapshotHistogram is a histogram's state in a snapshot.
type SnapshotHistogram struct {
	Labels  string           `json:"labels,omitempty"`
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []SnapshotBucket `json:"buckets"`
}

// Snapshot is a JSON-marshalable point-in-time view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]SnapshotHistogram `json:"histograms"`
}

// Snapshot captures the registry. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]SnapshotHistogram{},
	}
	for _, m := range r.collect() {
		k := key(m.name, m.labels)
		switch m.kind {
		case "counter":
			s.Counters[k] = m.value
		case "gauge":
			s.Gauges[k] = m.value
		case "histogram":
			h := SnapshotHistogram{Labels: m.labels, Count: m.count, Sum: m.sum}
			for i, b := range m.buckets {
				sb := SnapshotBucket{Count: b}
				if i < len(m.bounds) {
					sb.LE = m.bounds[i]
				} else {
					sb.Inf = true
				}
				h.Buckets = append(h.Buckets, sb)
			}
			s.Histograms[m.name] = h
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
