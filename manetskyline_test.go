package manetskyline

import (
	"testing"

	"manetskyline/internal/gen"
	"manetskyline/internal/skyline"
)

// The facade must support the full originate → process → merge protocol
// round trip documented in the package comment.
func TestFacadeProtocolRoundTrip(t *testing.T) {
	cfg := gen.DefaultConfig(4000, 2, gen.Independent, 77)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)

	schema := NewSchema(2, 1, 1000)
	devs := make([]*Device, len(parts))
	for i, p := range parts {
		devs[i] = NewDevice(DeviceID(i), p, schema, Under, true)
	}

	pos := Point{X: 500, Y: 500}
	const d = 400.0
	q, local := devs[0].Originate(pos, d)

	final := local.Skyline
	for _, dev := range devs[1:] {
		reply := dev.Process(q)
		q = q.WithFilter(reply.Filter, reply.FilterVDR)
		final = Merge(final, reply.Skyline)
	}

	want := ConstrainedSkyline(data, pos, d)
	if !skyline.SetEqual(final, want) {
		t.Fatalf("facade protocol produced %d tuples, centralized %d", len(final), len(want))
	}
}

func TestFacadeCentralizedHelpers(t *testing.T) {
	data := []Tuple{
		{X: 0, Y: 0, Attrs: []float64{1, 9}},
		{X: 1, Y: 1, Attrs: []float64{5, 5}},
		{X: 2, Y: 2, Attrs: []float64{9, 1}},
		{X: 3, Y: 3, Attrs: []float64{9, 9}}, // dominated
	}
	sky := Skyline(data)
	if len(sky) != 3 {
		t.Fatalf("Skyline = %v", sky)
	}
	csky := ConstrainedSkyline(data, Point{}, 2)
	if len(csky) != 2 { // only the first two are within distance 2
		t.Fatalf("ConstrainedSkyline = %v", csky)
	}
	if Unconstrained() <= 0 {
		t.Errorf("Unconstrained should be positive infinity")
	}
}

func TestFacadeEstimationModes(t *testing.T) {
	// The re-exported constants must match the protocol's behavior: all
	// three modes answer identically, only pruning differs.
	cfg := gen.DefaultConfig(2000, 3, gen.AntiCorrelated, 3)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)
	want := ConstrainedSkyline(data, Point{X: 500, Y: 500}, 600)
	for _, mode := range []Estimation{Exact, Over, Under} {
		a := NewDevice(0, parts[0], cfg.Schema(), mode, true)
		b := NewDevice(1, parts[1], cfg.Schema(), mode, true)
		c := NewDevice(2, parts[2], cfg.Schema(), mode, true)
		d := NewDevice(3, parts[3], cfg.Schema(), mode, true)
		q, local := a.Originate(Point{X: 500, Y: 500}, 600)
		final := local.Skyline
		for _, dev := range []*Device{b, c, d} {
			r := dev.Process(q)
			q = q.WithFilter(r.Filter, r.FilterVDR)
			final = Merge(final, r.Skyline)
		}
		if !skyline.SetEqual(final, want) {
			t.Errorf("mode %v: wrong result (%d vs %d tuples)", mode, len(final), len(want))
		}
	}
}
