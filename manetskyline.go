// Package manetskyline is a Go implementation of distributed constrained
// skyline query processing for mobile ad hoc networks, reproducing
// Huang, Jensen, Lu, and Ooi, "Skyline Queries Against Mobile Lightweight
// Devices in MANETs" (ICDE 2006).
//
// The library answers queries of the form "all sites within distance d of
// me that are not dominated on their non-spatial attributes by any other
// in-range site", where the data is horizontally partitioned across many
// resource-constrained devices connected only by multi-hop wireless links.
//
// This root package is the public facade. It re-exports the data model and
// the protocol pieces a library user composes:
//
//   - Tuple, Point, Rect, Schema — the spatial data model.
//   - Skyline, ConstrainedSkyline — centralized evaluation (ground truth,
//     small datasets, baselines).
//   - Device, Query, Estimation — the distributed protocol: local skylines
//     on hybrid storage, VDR-based filtering tuples (§3.2-3.4), duplicate
//     suppression, and Merge assembly (§4.3).
//   - The subsystems live in internal/ packages wired together by the
//     examples (examples/), the simulator CLI (cmd/skysim), and the
//     benchmark harness (cmd/skybench).
//
// Quick start — four devices answering a hotel query:
//
//	schema := manetskyline.NewSchema(2, 0, 1000)
//	dev := manetskyline.NewDevice(1, tuples, schema, manetskyline.Under, true)
//	q, local := dev.Originate(pos, 250)        // query + SK_org + filter
//	remote := otherDev.Process(q)              // reduced SK'_i, upgraded filter
//	final := manetskyline.Merge(local.Skyline, remote.Skyline)
package manetskyline

import (
	"manetskyline/internal/core"
	"manetskyline/internal/skyline"
	"manetskyline/internal/tuple"
)

// Tuple is one site: position (X, Y) plus smaller-is-better attributes.
type Tuple = tuple.Tuple

// Point is a location in the plane.
type Point = tuple.Point

// Rect is an axis-aligned rectangle (minimum bounding rectangles, cells).
type Rect = tuple.Rect

// Schema describes attributes and their global bounds.
type Schema = tuple.Schema

// NewSchema builds an n-attribute schema bounded by [lo, hi].
func NewSchema(n int, lo, hi float64) Schema { return tuple.NewSchema(n, lo, hi) }

// Device is one mobile device's protocol endpoint: hybrid-stored local
// relation, duplicate-query log, and filtering-tuple logic.
type Device = core.Device

// DeviceID identifies a device.
type DeviceID = core.DeviceID

// Query is the distributed skyline query Q_ds = (id, cnt, pos, d) with its
// piggy-backed filtering tuple.
type Query = core.Query

// Estimation selects how dominating-region volumes are computed when
// choosing filtering tuples.
type Estimation = core.Estimation

// Estimation modes: exact global bounds, pre-specified over-estimates, or
// device-local under-estimates (§3.3).
const (
	Exact = core.Exact
	Over  = core.Over
	Under = core.Under
)

// NewDevice builds a device over its local relation. dynamic enables the
// hop-by-hop filtering-tuple upgrade of §3.4.
func NewDevice(id DeviceID, ts []Tuple, schema Schema, mode Estimation, dynamic bool) *Device {
	return core.NewDevice(id, ts, schema, mode, dynamic)
}

// Skyline computes the skyline of a tuple set centrally (sort-filter-skyline).
func Skyline(ts []Tuple) []Tuple { return skyline.SFS(ts) }

// ConstrainedSkyline computes the skyline of the tuples within distance d
// of pos — the centralized semantics of the distributed query.
func ConstrainedSkyline(ts []Tuple, pos Point, d float64) []Tuple {
	return skyline.Constrained(ts, pos, d)
}

// Merge folds one device's result into a partial result, removing dominated
// tuples and duplicate sites (§4.3 assembly).
func Merge(current, incoming []Tuple) []Tuple { return core.Merge(current, incoming) }

// Unconstrained is the distance that disables the spatial predicate.
func Unconstrained() float64 { return core.Unconstrained() }
