// Storagemodels compares the four §4.1 storage layouts head to head on one
// device-sized relation: flat (raw values), the paper's hybrid (sorted
// ID-coded domains), domain storage (value pointers, unsorted domains), and
// PicoDBMS-style ring storage (value rings). It reports memory footprint
// and local skyline evaluation time, making the paper's prose argument for
// hybrid storage measurable.
//
// Run with: go run ./examples/storagemodels
package main

import (
	"fmt"
	"time"

	"manetskyline/internal/gen"
	"manetskyline/internal/localsky"
	"manetskyline/internal/storage"
)

func main() {
	const n = 50000
	fmt.Printf("one device's relation: %d tuples, 2 attributes, 100 distinct values each\n\n", n)
	fmt.Printf("%-8s  %10s  %14s  %14s  %8s\n", "model", "size", "skyline IN", "skyline AC", "vs flat")
	fmt.Printf("%-8s  %10s  %14s  %14s  %8s\n", "-----", "----", "----------", "----------", "-------")

	var flatIN time.Duration
	for _, model := range []string{"flat", "hybrid", "domain", "ring"} {
		var sizes int
		var times [2]time.Duration
		for di, dist := range []gen.Distribution{gen.Independent, gen.AntiCorrelated} {
			data := gen.Generate(gen.HandheldConfig(n, 2, dist, 42))
			var rel storage.Relation
			switch model {
			case "flat":
				rel = storage.NewFlat(data)
			case "hybrid":
				rel = storage.NewHybrid(data)
			case "domain":
				rel = storage.NewDomain(data)
			case "ring":
				rel = storage.NewRing(data)
			}
			sizes = rel.MemBytes()
			start := time.Now()
			var count int
			if h, ok := rel.(*storage.Hybrid); ok {
				count = len(localsky.HybridSkyline(h, localsky.Query{}, nil, nil).Skyline)
			} else {
				count = len(localsky.BNLSkyline(rel, localsky.Query{}, nil, nil).Skyline)
			}
			times[di] = time.Since(start)
			_ = count
		}
		if model == "flat" {
			flatIN = times[0]
		}
		speedup := float64(flatIN) / float64(times[0])
		fmt.Printf("%-8s  %7d KB  %11.2f ms  %11.2f ms  %7.2fx\n",
			model, sizes/1024,
			float64(times[0].Microseconds())/1000,
			float64(times[1].Microseconds())/1000,
			speedup)
	}

	fmt.Println("\nwhy the paper picks hybrid (§4.1-4.2):")
	fmt.Println("  - sorted domains make ID order equal value order: dominance tests compare")
	fmt.Println("    small integers instead of dereferenced floats")
	fmt.Println("  - the SFS presort means accepted skyline tuples are never evicted")
	fmt.Println("  - domain bounds l_j, h_j are O(1) — the whole-relation filter check is O(n attrs)")
	fmt.Println("  - byte-wide IDs shrink the relation versus flat raw values")
}
