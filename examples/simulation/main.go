// Simulation runs one full MANET scenario — the machinery behind the
// paper's Figures 8-12 — and narrates what happened: 25 pedestrians with
// handheld devices roam a 1 km² area for two simulated hours under the
// random waypoint model, issuing distributed skyline queries that spread by
// breadth-first flooding while results route back over AODV.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"

	"manetskyline/internal/gen"
	"manetskyline/internal/manet"
)

func main() {
	p := manet.DefaultParams()
	p.Grid = 5                  // 25 devices
	p.GlobalN = 50000           // tuples across all devices
	p.Dim = 2                   // price-and-rating style attributes
	p.Dist = gen.AntiCorrelated // the hard case: big skylines
	p.QueryDist = 250           // 250 m distance of interest
	p.Strategy = manet.BreadthFirst
	p.SimTime = 7200 // two hours
	p.MinQueries, p.MaxQueries = 1, 5
	p.Seed = 99

	fmt.Printf("simulating %d devices over %.0f×%.0f m for %.0f s (%v data, %d tuples)...\n\n",
		p.NumDevices(), p.Space, p.Space, p.SimTime, p.Dist, p.GlobalN)

	out := manet.Run(p)

	fmt.Printf("%-28s %d (+%d skipped while busy)\n", "queries issued:", len(out.Queries), out.SkippedIssues)
	fmt.Printf("%-28s %.0f%%\n", "completed (80% results in):", out.CompletionRate()*100)
	if rt, ok := out.MeanResponseTime(); ok {
		fmt.Printf("%-28s %.3f s\n", "mean response time:", rt)
	}
	fmt.Printf("%-28s %.3f\n", "pooled data reduction rate:", out.PooledDRR())
	fmt.Printf("%-28s %.1f\n", "mean messages per query:", out.MeanMessages())
	fmt.Printf("%-28s %d frames, %d bytes\n", "radio traffic:", out.Radio.FramesSent, out.Radio.BytesSent)
	fmt.Printf("%-28s %d RREQ / %d RREP / %d RERR\n", "AODV overhead:",
		out.Aodv.RREQSent, out.Aodv.RREPSent, out.Aodv.RERRSent)
	fmt.Printf("%-28s %d\n\n", "simulation events:", out.Events)

	// A few individual queries, to show the texture behind the averages.
	fmt.Println("first queries in detail:")
	for i, q := range out.Queries {
		if i == 8 {
			break
		}
		status := "timed out / partial"
		if q.Done {
			status = fmt.Sprintf("done in %.3f s", q.ResponseTime)
		}
		fmt.Printf("  t=%6.0fs  device %-2d  %-20s  %2d devices answered with data, DRR %+.3f, %3d msgs, %3d tuples\n",
			q.Issued, q.Org, status, q.Acc.Devices, q.DRR(), q.Messages, q.ResultTuples)
	}

	// Contrast with depth-first forwarding on the identical scenario.
	p2 := p
	p2.Strategy = manet.DepthFirst
	out2 := manet.Run(p2)
	fmt.Println("\nsame scenario with depth-first forwarding:")
	if rt, ok := out2.MeanResponseTime(); ok {
		fmt.Printf("  mean response time: %.3f s (serial traversal)\n", rt)
	}
	fmt.Printf("  mean messages per query: %.1f\n", out2.MeanMessages())
	fmt.Printf("  pooled DRR: %.3f\n", out2.PooledDRR())
}
