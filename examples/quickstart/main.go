// Quickstart walks through the paper's running example (Tables 2-5) with
// the real protocol machinery: four devices hold small hotel relations,
// device M4 issues a distributed skyline query for cheap, well-rated
// hotels, the filtering tuple is selected by dominating-region volume and
// dynamically upgraded along the relay path, and the originator assembles
// the exact global skyline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"manetskyline/internal/core"
	"manetskyline/internal/tuple"
)

func hotel(name string, price, rating float64) tuple.Tuple {
	// Sites get distinct synthetic positions; the example ignores the
	// spatial constraint, as §3 does.
	var x, y float64
	for _, c := range name {
		x = x*7 + float64(c)
		y = y*13 + float64(c)
	}
	return tuple.Tuple{X: x, Y: y, Attrs: []float64{price, rating}}
}

func main() {
	// The paper's Tables 2-5: four mobile devices, each holding a hotel
	// relation with (price, rating); smaller is better for both.
	r1 := []tuple.Tuple{
		hotel("h11", 20, 7), hotel("h12", 40, 5), hotel("h13", 80, 7),
		hotel("h14", 80, 4), hotel("h15", 100, 7), hotel("h16", 100, 3),
	}
	r2 := []tuple.Tuple{
		hotel("h21", 60, 3), hotel("h22", 90, 2), hotel("h23", 120, 1),
		hotel("h24", 140, 2), hotel("h25", 100, 4),
	}
	r3 := []tuple.Tuple{
		hotel("h31", 60, 3), hotel("h32", 80, 5), hotel("h33", 120, 4),
	}
	r4 := []tuple.Tuple{
		hotel("h41", 80, 2), hotel("h42", 120, 1), hotel("h43", 140, 2),
	}

	// Global attribute bounds: price ≤ 200, rating ≤ 10 (§3.2).
	schema := tuple.Schema{
		Names: []string{"price", "rating"},
		Min:   []float64{0, 0},
		Max:   []float64{200, 10},
	}

	// Devices with exact dominating-region computation and dynamic filter
	// updates (§3.4).
	m1 := core.NewDevice(1, r1, schema, core.Exact, true)
	m2 := core.NewDevice(2, r2, schema, core.Exact, true)
	m3 := core.NewDevice(3, r3, schema, core.Exact, true)
	m4 := core.NewDevice(4, r4, schema, core.Exact, true)

	// M4 originates the query (no spatial constraint in the example).
	q, orgRes := m4.Originate(tuple.Point{}, core.Unconstrained())
	fmt.Printf("M4 local skyline SK_org: %d tuples\n", len(orgRes.Skyline))
	fmt.Printf("M4 selects filtering tuple (max VDR): price=%.0f rating=%.0f (VDR=%.0f)\n\n",
		q.Filter.Attrs[0], q.Filter.Attrs[1], q.FilterVDR)

	// The query relays M4 → M3 → M1, then separately reaches M2. Each hop
	// may upgrade the filter (§3.4's walk-through).
	res3 := m3.Process(q)
	q3 := core.Forwardable(q, res3)
	fmt.Printf("M3: |SK_3|=%d, sends %d tuples; filter now price=%.0f rating=%.0f (VDR=%.0f)\n",
		res3.Unreduced, len(res3.Skyline), q3.Filter.Attrs[0], q3.Filter.Attrs[1], q3.FilterVDR)

	res1 := m1.Process(q3)
	fmt.Printf("M1: |SK_1|=%d, sends %d tuples after filtering (h14, h16 pruned)\n",
		res1.Unreduced, len(res1.Skyline))

	res2 := m2.Process(q)
	fmt.Printf("M2: |SK_2|=%d, sends %d tuples\n\n", res2.Unreduced, len(res2.Skyline))

	// Assembly at the originator (§4.3): merge all partial results.
	final := core.MergeAll(orgRes.Skyline, res3.Skyline, res1.Skyline, res2.Skyline)
	fmt.Println("global skyline (price, rating):")
	for _, t := range final {
		fmt.Printf("  price=%3.0f rating=%.0f\n", t.Attrs[0], t.Attrs[1])
	}

	// Data reduction accounting (Formula 1) over the three remote devices.
	var acc core.DRRAccumulator
	acc.Observe(res1)
	acc.Observe(res2)
	acc.Observe(res3)
	fmt.Printf("\ndata reduction rate: %.3f (%d unreduced → %d transmitted, 3 filters shipped)\n",
		acc.DRR(), acc.Unreduced, acc.Reduced)
}
