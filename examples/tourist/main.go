// Tourist is the paper's §2 motivating scenario on the live peer runtime: a
// tourist's handset wants inexpensive, highly rated restaurants within
// walking distance, but its own data covers only part of the area, so it
// queries nearby devices over ad hoc links. Every peer is a goroutine;
// messages travel over an in-memory transport with latency and loss.
//
// Run with: go run ./examples/tourist
package main

import (
	"fmt"
	"sort"
	"time"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/p2p"
	"manetskyline/internal/tuple"
)

func main() {
	// A city district: 20,000 restaurants over a 1000×1000 m area, each
	// with a price level and a rating (smaller is better for both, as in
	// the paper's examples).
	cfg := gen.DefaultConfig(20000, 2, gen.Independent, 2026)
	restaurants := gen.Generate(cfg)

	// Sixteen devices each carry the data of one 250×250 m cell — nobody
	// holds the whole city.
	const g = 4
	parts := gen.GridPartition(restaurants, g, cfg.Space)

	net := p2p.NewNetwork(p2p.Config{
		Latency:      3 * time.Millisecond,
		Jitter:       2 * time.Millisecond,
		Loss:         0.02,
		QueryTimeout: 2 * time.Second,
		Quorum:       0.8, // like the paper's BF response-time rule
		Seed:         7,
	})
	defer net.Close()

	peers := make([]*p2p.Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/g, i%g, g, cfg.Space).Center()
		peers[i] = net.AddPeer(core.DeviceID(i), part, cfg.Schema(), core.Under, true, pos)
	}
	// Ad hoc links between devices within radio range.
	net.LinkByRange(380)

	// The tourist stands near the middle of the city and wants options
	// within 300 m.
	me := peers[5]
	const walkingDistance = 300

	local := me.LocalSkyline(walkingDistance)
	fmt.Printf("my own data only: %d candidate restaurants\n", len(local))

	// Progressive refinement: watch the answer improve as devices reply.
	res, err := me.QueryProgressive(walkingDistance, func(partial []tuple.Tuple, results int) {
		fmt.Printf("  ... %d replies in: %d candidates so far\n", results, len(partial))
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after asking %d nearby devices (%.0f ms): %d candidates, complete=%v\n\n",
		res.Results, float64(res.Elapsed.Microseconds())/1000, len(res.Skyline), res.Complete)

	sort.Slice(res.Skyline, func(i, j int) bool {
		return res.Skyline[i].Attrs[0] < res.Skyline[j].Attrs[0]
	})
	fmt.Println("the skyline — no restaurant is both cheaper and better rated than any of these:")
	for _, r := range res.Skyline {
		fmt.Printf("  at (%4.0f,%4.0f)  %3.0f m away  price level %4.0f  rating %4.0f\n",
			r.X, r.Y, me.Pos().Dist(tuple.Point{X: r.X, Y: r.Y}), r.Attrs[0], r.Attrs[1])
	}
}
