// Tcppeers runs the distributed skyline protocol over real TCP sockets on
// localhost: nine peers, each holding one cell of a points-of-interest
// dataset, linked in a grid like devices in radio range of each other.
// Messages are serialized with the binary wire format — the same bytes a
// deployment between physical devices would exchange. Each neighbour link
// rides the supervised connection pool (reconnect, retry, dead-letter
// accounting); internal/chaos soaks the same topology under fault plans.
//
// Run with: go run ./examples/tcppeers
package main

import (
	"fmt"
	"sort"

	"manetskyline/internal/core"
	"manetskyline/internal/gen"
	"manetskyline/internal/tcp"
)

func main() {
	const g = 3
	cfg := gen.DefaultConfig(9000, 2, gen.AntiCorrelated, 11)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, g, cfg.Space)

	dir := tcp.NewDirectory()
	peers := make([]*tcp.Peer, len(parts))
	for i, part := range parts {
		pos := gen.CellRect(i/g, i%g, g, cfg.Space).Center()
		p, err := tcp.NewPeer(core.DeviceID(i), part, cfg.Schema(), core.Under, true,
			pos, dir, tcp.DefaultConfig())
		if err != nil {
			panic(err)
		}
		defer p.Close()
		peers[i] = p
		fmt.Printf("peer %d listening on %s with %d tuples\n", i, p.Addr(), len(part))
	}

	// Grid links: each peer talks to its 4-neighbourhood, as radio range
	// would allow.
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			i := r*g + c
			if c < g-1 {
				peers[i].AddNeighbor(peers[i+1].ID())
				peers[i+1].AddNeighbor(peers[i].ID())
			}
			if r < g-1 {
				peers[i].AddNeighbor(peers[i+g].ID())
				peers[i+g].AddNeighbor(peers[i].ID())
			}
		}
	}

	// The centre peer asks: best (cheap AND well-rated) sites within 400 m.
	me := peers[4]
	fmt.Printf("\npeer %d querying within 400 m of %v ...\n", me.ID(), me.Pos())
	res, err := me.Query(400, len(peers))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d peers answered over TCP in %v (complete=%v)\n",
		res.Results, res.Elapsed.Round(1e6), res.Complete)

	sort.Slice(res.Skyline, func(i, j int) bool {
		return res.Skyline[i].Attrs[0] < res.Skyline[j].Attrs[0]
	})
	fmt.Printf("skyline: %d sites\n", len(res.Skyline))
	for i, t := range res.Skyline {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Skyline)-10)
			break
		}
		fmt.Printf("  (%6.1f, %6.1f)  p1=%4.0f  p2=%4.0f\n", t.X, t.Y, t.Attrs[0], t.Attrs[1])
	}
}
