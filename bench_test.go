// Benchmarks: one per table/figure of the paper's evaluation, each
// exercising the code path that regenerates it at a single representative
// sweep point (the full sweeps live in cmd/skybench). Run with:
//
//	go test -bench=. -benchmem
package manetskyline

import (
	"math"
	"testing"

	"manetskyline/internal/bench"
	"manetskyline/internal/core"
	"manetskyline/internal/device"
	"manetskyline/internal/gen"
	"manetskyline/internal/localsky"
	"manetskyline/internal/manet"
	"manetskyline/internal/skyline"
	"manetskyline/internal/storage"
	"manetskyline/internal/tuple"
	"manetskyline/internal/wire"
)

// --- Figure 5(a): local skyline time vs cardinality, HS vs FS ---------------

func benchLocalHybrid(b *testing.B, n, dim int, dist gen.Distribution) {
	data := gen.Generate(gen.HandheldConfig(n, dim, dist, 1))
	rel := storage.NewHybrid(data)
	q := localsky.Query{D: math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localsky.HybridSkyline(rel, q, nil, nil)
	}
}

func benchLocalFlat(b *testing.B, n, dim int, dist gen.Distribution) {
	data := gen.Generate(gen.HandheldConfig(n, dim, dist, 1))
	rel := storage.NewFlat(data)
	q := localsky.Query{D: math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		localsky.BNLSkyline(rel, q, nil, nil)
	}
}

func BenchmarkFig5aHybridIN(b *testing.B) { benchLocalHybrid(b, 10000, 2, gen.Independent) }
func BenchmarkFig5aFlatIN(b *testing.B)   { benchLocalFlat(b, 10000, 2, gen.Independent) }
func BenchmarkFig5aHybridAC(b *testing.B) { benchLocalHybrid(b, 10000, 2, gen.AntiCorrelated) }
func BenchmarkFig5aFlatAC(b *testing.B)   { benchLocalFlat(b, 10000, 2, gen.AntiCorrelated) }

// --- Figure 5(b): local skyline time vs dimensionality ----------------------

func BenchmarkFig5bHybrid5D(b *testing.B) { benchLocalHybrid(b, 10000, 5, gen.Independent) }
func BenchmarkFig5bFlat5D(b *testing.B)   { benchLocalFlat(b, 10000, 5, gen.Independent) }

// --- Figures 6-7: static pre-test (one full m×m-query round) ----------------

func benchStatic(b *testing.B, dist gen.Distribution, dynamic bool, mode core.Estimation) {
	cfg := gen.DefaultConfig(5000, 2, dist, 1)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 3, cfg.Space)
	devs := make([]*core.Device, len(parts))
	for i, p := range parts {
		devs[i] = core.NewDevice(core.DeviceID(i), p, cfg.Schema(), mode, dynamic)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range devs {
			d.Log.Reset()
		}
		core.RunStatic(devs, 3, 4)
	}
}

func BenchmarkFig6StaticIN(b *testing.B) { benchStatic(b, gen.Independent, true, core.Exact) }
func BenchmarkFig7StaticAC(b *testing.B) { benchStatic(b, gen.AntiCorrelated, true, core.Exact) }

// --- Figures 8-11: one MANET scenario per strategy ---------------------------

func benchSim(b *testing.B, dist gen.Distribution, strategy manet.Forwarding) {
	p := manet.DefaultParams()
	p.Grid = 3
	p.GlobalN = 5000
	p.Dist = dist
	p.Strategy = strategy
	p.SimTime = 1200
	p.MinQueries, p.MaxQueries = 1, 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		manet.Run(p)
	}
}

func BenchmarkFig8SimDRRBreadthIN(b *testing.B) { benchSim(b, gen.Independent, manet.BreadthFirst) }
func BenchmarkFig9SimDRRBreadthAC(b *testing.B) { benchSim(b, gen.AntiCorrelated, manet.BreadthFirst) }
func BenchmarkFig10SimRespDepthIN(b *testing.B) { benchSim(b, gen.Independent, manet.DepthFirst) }
func BenchmarkFig11SimRespDepthAC(b *testing.B) { benchSim(b, gen.AntiCorrelated, manet.DepthFirst) }

// --- Figure 12: message counting on a denser network ------------------------

func BenchmarkFig12Messages(b *testing.B) {
	p := manet.DefaultParams()
	p.Grid = 4
	p.GlobalN = 5000
	p.SimTime = 1200
	p.MinQueries, p.MaxQueries = 1, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		out := manet.Run(p)
		_ = out.MeanMessages()
	}
}

// --- Tables 2-5 path: the core protocol micro-operations ---------------------

func BenchmarkProtocolOriginateProcessMerge(b *testing.B) {
	cfg := gen.DefaultConfig(4000, 2, gen.Independent, 1)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)
	org := core.NewDevice(0, parts[0], cfg.Schema(), core.Under, true)
	rem := core.NewDevice(1, parts[1], cfg.Schema(), core.Under, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, res := org.Originate(tuple.Point{X: 500, Y: 500}, 400)
		r := rem.Process(q)
		core.Merge(res.Skyline, r.Skyline)
	}
}

// --- centralized baselines ----------------------------------------------------

func benchAlgo(b *testing.B, f func([]tuple.Tuple) []tuple.Tuple, dist gen.Distribution) {
	data := gen.Generate(gen.DefaultConfig(10000, 2, dist, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(data)
	}
}

func BenchmarkBaselineBNLIN(b *testing.B)    { benchAlgo(b, skyline.BNL, gen.Independent) }
func BenchmarkBaselineSFSIN(b *testing.B)    { benchAlgo(b, skyline.SFS, gen.Independent) }
func BenchmarkBaselineDCIN(b *testing.B)     { benchAlgo(b, skyline.DivideAndConquer, gen.Independent) }
func BenchmarkBaselineSort2DIN(b *testing.B) { benchAlgo(b, skyline.Sort2D, gen.Independent) }
func BenchmarkBaselineSFSAC(b *testing.B)    { benchAlgo(b, skyline.SFS, gen.AntiCorrelated) }
func BenchmarkBaselineBitmapIN(b *testing.B) { benchAlgo(b, skyline.Bitmap, gen.Independent) }
func BenchmarkBaselineIndexIN(b *testing.B)  { benchAlgo(b, skyline.Index, gen.Independent) }
func BenchmarkBaselineNNIN(b *testing.B)     { benchAlgo(b, skyline.NN, gen.Independent) }
func BenchmarkBaselineBBSIN(b *testing.B)    { benchAlgo(b, skyline.BBS, gen.Independent) }

func BenchmarkBaselineBBSIndexedIN(b *testing.B) {
	data := gen.Generate(gen.DefaultConfig(10000, 2, gen.Independent, 1))
	tree := skyline.BuildAttrTree(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.BBSOnTree(data, tree)
	}
}

// --- ablations ----------------------------------------------------------------

func BenchmarkAblationStorageBuildHybrid(b *testing.B) {
	data := gen.Generate(gen.HandheldConfig(10000, 3, gen.Independent, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		storage.NewHybrid(data)
	}
}

func BenchmarkAblationMultiFilterSelect(b *testing.B) {
	data := gen.Generate(gen.DefaultConfig(20000, 2, gen.AntiCorrelated, 1))
	sky := skyline.SFS(data)
	hi := []float64{1000, 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SelectFilters(sky, hi, 3, 1024, 7)
	}
}

func BenchmarkAblationMultiFilterProtocol(b *testing.B) {
	cfg := gen.DefaultConfig(4000, 2, gen.AntiCorrelated, 1)
	data := gen.Generate(cfg)
	parts := gen.GridPartition(data, 2, cfg.Space)
	devs := make([]*core.Device, len(parts))
	for i, p := range parts {
		devs[i] = core.NewDevice(core.DeviceID(i), p, cfg.Schema(), core.Under, true)
		devs[i].NumFilters = 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range devs {
			d.Log.Reset()
		}
		core.RunStaticOpt(devs, 2, 0, core.StaticOptions{SkipAssembly: true})
	}
}

// --- the wire format ------------------------------------------------------------

func BenchmarkWireEncodeDecodeResult(b *testing.B) {
	data := gen.Generate(gen.DefaultConfig(3000, 2, gen.AntiCorrelated, 1))
	sky := skyline.SFS(data)
	r := wire.Result{Key: core.QueryKey{Org: 1, Cnt: 1}, From: 2, Tuples: sky}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeResult(r)
		if _, err := wire.DecodeResult(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- cost model (the Figure 5 estimator itself) --------------------------------

func BenchmarkCostModelTime(b *testing.B) {
	m := device.Handheld200MHz()
	s := localsky.Stats{Scanned: 10000, IDCmp: 400000, ValCmp: 10000, DistChecks: 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Time(s)
	}
}

// --- the harness end to end at small scale -------------------------------------

func BenchmarkHarnessFig5aSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig5a(bench.Small)
	}
}
